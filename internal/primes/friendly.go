package primes

import (
	"fmt"
	"math/bits"
	"sort"
)

// The ABC-FHE "NTT-friendly" prime family (paper §IV-A, Eq. 8):
//
//	Q = 2^bw + k·2^(n+1) + 1,   k = ±2^a ± 2^b ± 2^c
//
// with n+1 = logN+1 so that 2N | Q-1 (the negacyclic NTT exists), and k a
// signed sum of at most three powers of two. Two consequences matter for
// hardware (Eq. 9–11):
//
//  1. Q itself has signed-digit weight ≤ 5 (2^bw, the ≤3 k-terms, and +1),
//     so the m×Q multiplication inside Montgomery reduction is a
//     shift-and-add network, and
//  2. QInv ≡ 1 - 2^bw - k·2^(n+1) (mod 2^w) for any radix 2^w with
//     w ≤ 2·bw, so the m = T·QInv step is *also* shift-and-add.
//
// Only the initial a×b product needs a real multiplier — the basis of the
// paper's Table I area reduction (67.7% vs. Barrett, 41.2% vs. vanilla
// Montgomery).

// SignedTerm is one ±2^Exp term of a signed-digit decomposition.
type SignedTerm struct {
	Sign int // +1 or -1
	Exp  uint
}

func (t SignedTerm) String() string {
	s := "+"
	if t.Sign < 0 {
		s = "-"
	}
	return fmt.Sprintf("%s2^%d", s, t.Exp)
}

// FriendlyPrime is a member of the family with its structural decomposition.
type FriendlyPrime struct {
	Q     uint64       // the prime
	BW    int          // bw in Eq. 8: Q = 2^BW + k·2^(LogN+1) + 1
	LogN  int          // n = LogN (2^(n+1) = 2N divides Q-1)
	K     int64        // the k of Eq. 8
	Terms []SignedTerm // signed power-of-two terms of k·2^(LogN+1)
}

// Weight returns the total signed-digit weight of Q (shift-add adder count
// for multiplying by Q): the 2^BW term, the k terms and the trailing +1.
func (f FriendlyPrime) Weight() int { return 2 + len(f.Terms) }

// TwoAdicity returns v₂(Q-1): the exponent of the largest power of two
// dividing Q-1 — equivalently the smallest exponent in the decomposition.
// The negacyclic NTT of degree 2^logN needs TwoAdicity ≥ logN+1.
func (f FriendlyPrime) TwoAdicity() uint {
	v := uint(f.BW)
	for _, t := range f.Terms {
		if t.Exp < v {
			v = t.Exp
		}
	}
	return v
}

// QInvShiftAdd returns QInv mod 2^w as the closed form of Eq. 11:
// 1 - 2^bw - k·2^(n+1), reduced mod 2^w. The binomial tail of Eq. 10
// vanishes mod 2^w precisely when (Q-1)² ≡ 0 mod 2^w, i.e. for radices
// w ≤ 2·v₂(Q-1) — this is the paper's "k ≥ 2^(bw/2-1-n)" feasibility
// condition expressed on the two-adic valuation.
func (f FriendlyPrime) QInvShiftAdd(w uint) uint64 {
	if w > 2*f.TwoAdicity() {
		panic("primes: Eq. 11 closed form requires w ≤ 2·v₂(Q-1)")
	}
	var mask uint64 = ^uint64(0)
	if w < 64 {
		mask = (uint64(1) << w) - 1
	}
	x := f.Q - 1 // 2^bw + k·2^(n+1)
	return (1 - x) & mask
}

// VerifyQInv checks Eq. 9/11: the closed-form QInv actually satisfies
// Q·QInv ≡ 1 (mod 2^w).
func (f FriendlyPrime) VerifyQInv(w uint) bool {
	var mask uint64 = ^uint64(0)
	if w < 64 {
		mask = (uint64(1) << w) - 1
	}
	return (f.Q*f.QInvShiftAdd(w))&mask == 1
}

// searchSpec bounds one family enumeration.
type searchSpec struct {
	bitLen   int // required bit length of Q
	logN     int // minimum two-adicity exponent: 2^(logN+1) | Q-1
	maxTerms int // maximum number of ±2^e terms in k (paper: 3)
}

// enumerate yields every *prime* member of the family with the exact bit
// length spec.bitLen, deduplicated (different decompositions of the same
// value count once; the minimum-weight decomposition is kept).
func enumerate(spec searchSpec) []FriendlyPrime {
	found := map[uint64]FriendlyPrime{}
	minE := uint(spec.logN + 1)

	consider := func(q uint64, terms []SignedTerm, bw int) {
		if bits.Len64(q) != spec.bitLen {
			return
		}
		if (q-1)%(uint64(1)<<minE) != 0 {
			return // two-adicity broken (can happen when a term exp < minE sneaks in)
		}
		if !IsPrime(q) {
			return
		}
		if old, ok := found[q]; ok && len(old.Terms) <= len(terms) {
			return
		}
		k := int64(0)
		for _, t := range terms {
			v := int64(1) << (t.Exp - minE)
			if t.Sign < 0 {
				v = -v
			}
			k += v
		}
		cp := make([]SignedTerm, len(terms))
		copy(cp, terms)
		found[q] = FriendlyPrime{Q: q, BW: bw, LogN: spec.logN, K: k, Terms: cp}
	}

	// The leading power 2^bw: for a bitLen-bit Q, bw is bitLen-1 when the
	// k-part is non-negative overall, or bitLen when it is negative
	// (2^bw - something). Enumerate both anchors.
	for _, bw := range []int{spec.bitLen - 1, spec.bitLen} {
		if bw >= 63 {
			continue
		}
		base := (uint64(1) << uint(bw)) + 1
		// k = 0 (weight-3 primes like 2^bw+1) — only prime for Fermat cases.
		consider(base, nil, bw)
		maxE := uint(bw) // term exponents strictly below the anchor+1
		exps := []uint{}
		for e := minE; e <= maxE; e++ {
			exps = append(exps, e)
		}
		signs := []int{1, -1}
		// 1-term k.
		if spec.maxTerms >= 1 {
			for _, e := range exps {
				for _, s := range signs {
					q := addTerm(base, s, e)
					if q != 0 {
						consider(q, []SignedTerm{{s, e}}, bw)
					}
				}
			}
		}
		// 2-term k.
		if spec.maxTerms >= 2 {
			for i, e1 := range exps {
				for _, s1 := range signs {
					q1 := addTerm(base, s1, e1)
					if q1 == 0 {
						continue
					}
					for _, e2 := range exps[i+1:] {
						for _, s2 := range signs {
							q := addTerm(q1, s2, e2)
							if q != 0 {
								consider(q, []SignedTerm{{s1, e1}, {s2, e2}}, bw)
							}
						}
					}
				}
			}
		}
		// 3-term k.
		if spec.maxTerms >= 3 {
			for i, e1 := range exps {
				for _, s1 := range signs {
					q1 := addTerm(base, s1, e1)
					if q1 == 0 {
						continue
					}
					for j := i + 1; j < len(exps); j++ {
						e2 := exps[j]
						for _, s2 := range signs {
							q2 := addTerm(q1, s2, e2)
							if q2 == 0 {
								continue
							}
							for _, e3 := range exps[j+1:] {
								for _, s3 := range signs {
									q := addTerm(q2, s3, e3)
									if q != 0 {
										consider(q, []SignedTerm{{s1, e1}, {s2, e2}, {s3, e3}}, bw)
									}
								}
							}
						}
					}
				}
			}
		}
	}

	out := make([]FriendlyPrime, 0, len(found))
	for _, f := range found {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Q < out[j].Q })
	return out
}

// addTerm returns v ± 2^e, or 0 on wrap-around below zero / overflow.
func addTerm(v uint64, sign int, e uint) uint64 {
	t := uint64(1) << e
	if sign > 0 {
		if v > ^uint64(0)-t {
			return 0
		}
		return v + t
	}
	if v < t {
		return 0
	}
	return v - t
}

// Search returns all NTT-friendly primes of exactly bitLen bits supporting
// degree-2^logN negacyclic NTTs, with k restricted to at most maxTerms
// signed power-of-two terms (the paper uses 3).
func Search(bitLen, logN, maxTerms int) []FriendlyPrime {
	return enumerate(searchSpec{bitLen: bitLen, logN: logN, maxTerms: maxTerms})
}

// Census counts family members across an inclusive bit-length range.
// Paper §IV-A: for N = 2^16 the 32–36 bit census yields 443 primes, "more
// than adequate" for 20–40 encryption levels.
func Census(minBits, maxBits, logN, maxTerms int) (total int, perBitLen map[int]int) {
	perBitLen = map[int]int{}
	for b := minBits; b <= maxBits; b++ {
		n := len(Search(b, logN, maxTerms))
		perBitLen[b] = n
		total += n
	}
	return total, perBitLen
}

// CensusPaper counts the family under the strict reading of Eq. 8 used for
// the paper's 443-prime figure:
//
//   - k < 0, because the Montgomery radix R = 2^bw must satisfy R ≥ Q;
//   - exactly three signed terms, k = ±2^a ± 2^b ± 2^c taken literally; and
//   - the Eq. 11 feasibility condition (closed-form QInv valid at radix
//     2^bw, i.e. v₂(Q-1) ≥ bw/2 — the paper's "k ≥ 2^(bw/2-1-n)").
//
// Our enumeration yields 466 for the 32–36 bit, N=2^16 range, vs. the
// paper's 443 (≈5% apart; the residual difference is an edge convention the
// paper does not specify — see EXPERIMENTS.md).
func CensusPaper(minBits, maxBits, logN int) (total int, perBitLen map[int]int) {
	perBitLen = map[int]int{}
	for b := minBits; b <= maxBits; b++ {
		n := 0
		for _, f := range Search(b, logN, 3) {
			if len(f.Terms) != 3 || f.K >= 0 {
				continue
			}
			if int(f.TwoAdicity()) < f.BW/2 {
				continue
			}
			n++
		}
		perBitLen[b] = n
		total += n
	}
	return total, perBitLen
}

// NAF returns the non-adjacent form of v: the canonical minimal-weight
// signed-digit representation. Hardware shift-add cost of multiplying by a
// constant is proportional to the NAF weight; internal/modmul uses this to
// price the NTT-friendly Montgomery datapath.
func NAF(v uint64) []SignedTerm {
	var out []SignedTerm
	var e uint
	for v > 0 {
		if v&1 == 1 {
			// digit = 2 - (v mod 4): +1 if v≡1, -1 if v≡3 (mod 4)
			if v&3 == 3 {
				out = append(out, SignedTerm{-1, e})
				v++ // carry
			} else {
				out = append(out, SignedTerm{+1, e})
				v--
			}
		}
		v >>= 1
		e++
		if e > 80 {
			break
		}
	}
	return out
}

// NAFWeight is the number of nonzero digits in the non-adjacent form.
func NAFWeight(v uint64) int { return len(NAF(v)) }
