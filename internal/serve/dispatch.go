package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	abcfhe "repro"
)

// runFunc executes one evaluation against the session's (possibly nil,
// for key-free ops) evaluation keys and returns the response parts.
type runFunc func(evk *abcfhe.EvaluationKeys) ([][]byte, error)

// request is one queued operation. done is buffered so a worker never
// blocks on a handler whose client already disconnected.
type request struct {
	op        string
	needsKeys bool
	ctx       context.Context
	run       runFunc
	done      chan result
	enqueued  time.Time
}

type result struct {
	parts [][]byte
	err   error
}

// session is one registered client stream: a stable id, the content
// hash of its evaluation-key blob, and a queue the dispatcher drains in
// batches. All requests queued on one session share a key hash, so a
// batch pins the cache entry once however many ops it carries.
type session struct {
	id      string
	hash    string
	sp      *specServer
	created time.Time

	mu      sync.Mutex
	queue   []*request
	running bool // a worker owns this session's queue right now
	closed  bool
}

func (s *session) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// dispatcher owns the bounded worker pool and the global in-flight
// bound. Same-session requests coalesce: a session enters the work
// channel at most once, and the owning worker drains whatever
// accumulated — one cache pin, one metrics batch — then re-checks for
// arrivals before handing the session back.
type dispatcher struct {
	cache    *KeyCache
	m        *metrics
	clock    Clock
	max      int64
	inflight atomic.Int64
	work     chan *session
	wg       sync.WaitGroup
}

func newDispatcher(cache *KeyCache, m *metrics, clock Clock, maxInflight, workers int) *dispatcher {
	d := &dispatcher{
		cache: cache,
		m:     m,
		clock: clock,
		max:   int64(maxInflight),
		// A session sits in the channel only while it has ≥1 in-flight
		// request, and each session appears at most once (the running
		// flag), so maxInflight slots mean the send in enqueue can never
		// block; +workers is slack for the drain handoff.
		work: make(chan *session, maxInflight+workers),
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

// enqueue admits a request or reports backpressure. The in-flight
// counter spans queued AND executing requests: admission control is a
// bound on work the server has accepted, not on channel capacity.
func (d *dispatcher) enqueue(s *session, req *request) error {
	if d.inflight.Add(1) > d.max {
		d.inflight.Add(-1)
		d.m.throttle()
		return ErrOverloaded
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		d.inflight.Add(-1)
		return ErrUnknownSession
	}
	s.queue = append(s.queue, req)
	kick := !s.running
	if kick {
		s.running = true
	}
	s.mu.Unlock()
	if kick {
		d.work <- s
	}
	return nil
}

// close stops the workers. Only call once every producer is done — the
// service calls it after the HTTP server has fully shut down, so no
// handler can send on work again.
func (d *dispatcher) close() {
	close(d.work)
	d.wg.Wait()
}

func (d *dispatcher) worker() {
	defer d.wg.Done()
	for s := range d.work {
		d.drainSession(s)
	}
}

// drainSession batches until the session's queue is empty, then clears
// running under the same lock that observes emptiness — an enqueue
// racing this either sees running=true (no double dispatch) or finds
// the flag cleared and kicks the session itself.
func (d *dispatcher) drainSession(s *session) {
	for {
		s.mu.Lock()
		batch := s.queue
		s.queue = nil
		if len(batch) == 0 {
			s.running = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		d.runBatch(s, batch)
	}
}

// runBatch acquires the session's keys once (when any request needs
// them) and executes the batch in arrival order. Key-acquisition
// failures fail only the key-needing requests; key-free ops (expand,
// once routed here) still run.
func (d *dispatcher) runBatch(s *session, batch []*request) {
	d.m.batch(len(batch))
	var keys *abcfhe.EvaluationKeys
	var keyErr error
	var release func()
	for _, r := range batch {
		if r.needsKeys {
			keys, release, keyErr = d.cache.Acquire(s.hash)
			break
		}
	}
	for _, r := range batch {
		var res result
		switch {
		case r.ctx.Err() != nil:
			res = result{err: r.ctx.Err()} // client gone; don't burn CPU on it
		case r.needsKeys && keyErr != nil:
			res = result{err: keyErr}
		default:
			parts, err := r.run(keys)
			res = result{parts: parts, err: err}
		}
		// Latency is enqueue→completion: queue wait is part of what the
		// client experienced, and what capacity planning needs.
		d.m.observe(r.op, d.clock().Sub(r.enqueued), res.err)
		r.done <- res
		d.inflight.Add(-1)
	}
	if release != nil {
		release()
	}
}
