// Package sfg analyzes signal-flow graphs of pipelined Fourier-like
// transforms: which butterfly positions of a multi-path delay commutator
// (MDC) pipeline need multipliers under different radix/scheduling choices.
// It reproduces the paper's Fig. 4 study:
//
//   - Fig. 4a: in an 8-point negacyclic NTT, separate ψ pre-processing
//     costs 13 twiddle multiplications in the SFG while the merged
//     radix-2^n schedule needs 12 = (N/2)·log2(N);
//   - Fig. 4b: across the design space (decimation, stage grouping,
//     negacyclic handling) the merged radix-2^n configuration minimizes
//     physical multipliers at P/2·log2(N), with double-digit percentage
//     savings over radix-2 and radix-2^2 NTT designs once pre/post
//     processing and N^{-1} scaling banks are accounted.
//
// Counting conventions (documented because the paper's are implicit):
// modular (NTT) rotations always cost a full multiplier — "in the NTT, all
// multipliers are unified as modular multipliers" (§IV-A) — whereas
// complex (FFT) rotations come in classes: ±1/±j are free wiring, W8 is a
// shift-add rotator (0.25), W16 a small CSD rotator (0.5), anything else a
// generic multiplier (1.0).
package sfg

import (
	"fmt"
	"math/bits"
)

// Kind selects the arithmetic of the transform.
type Kind int

const (
	NTT Kind = iota
	FFT
)

func (k Kind) String() string {
	if k == NTT {
		return "NTT"
	}
	return "FFT"
}

// StageTwiddles returns the multiset of twiddle exponents (of ω_N) used at
// stage s of a radix-2 DIF transform of size n: exponents j·2^s for
// j < n/2^(s+1), each appearing 2^s times. Stage 0 is the widest stage.
func StageTwiddles(n, s int) []int {
	logN := bits.Len(uint(n)) - 1
	if s < 0 || s >= logN {
		panic("sfg: stage out of range")
	}
	half := n >> uint(s+1) // butterflies per block
	blocks := 1 << uint(s)
	out := make([]int, 0, n/2)
	for b := 0; b < blocks; b++ {
		for j := 0; j < half; j++ {
			out = append(out, j<<uint(s))
		}
	}
	return out
}

// SpatialMultCount counts non-trivial twiddle multiplications in the fully
// spatial (P = N) SFG of an N-point negacyclic NTT.
//
// merged = false: separate ψ pre-processing (N pre-multipliers, the
// hardware bank processes every input; ω^0 stage twiddles are trivial and
// skipped) — the paper's "Pre-processing Radix-2" arrangement.
// merged = true: the radix-2^n merged schedule where every butterfly
// carries one ψ-power multiplication: exactly (N/2)·log2(N).
func SpatialMultCount(n int, merged bool) int {
	logN := bits.Len(uint(n)) - 1
	if merged {
		return n / 2 * logN
	}
	count := n // the ψ^i pre-processing bank (hardware processes all N inputs)
	for s := 0; s < logN; s++ {
		for _, e := range StageTwiddles(n, s) {
			if e%n != 0 {
				count++
			}
		}
	}
	return count
}

// rotationClass classifies a twiddle exponent e (of ω_N) by hardware cost.
type rotationClass int

const (
	rotOne rotationClass = iota // ω^0 = 1: bypass
	rotJ                        // ω^(N/4) multiples: ±1, ±j
	rotW8                       // ω^(N/8) multiples: W8 rotations
	rotW16                      // ω^(N/16) multiples
	rotGeneric
)

func classify(e, n int) rotationClass {
	e %= n
	if e < 0 {
		e += n
	}
	switch {
	case e == 0:
		return rotOne
	case n >= 4 && e%(n/4) == 0:
		return rotJ
	case n >= 8 && e%(n/8) == 0:
		return rotW8
	case n >= 16 && e%(n/16) == 0:
		return rotW16
	default:
		return rotGeneric
	}
}

// cost in generic-multiplier equivalents for a position whose twiddle
// stream contains the given worst (most expensive) class.
func classCost(k Kind, c rotationClass) float64 {
	if c == rotOne {
		return 0
	}
	if k == NTT {
		// Every non-unit modular rotation is a full modular multiplier.
		return 1
	}
	switch c {
	case rotJ:
		return 0
	case rotW8:
		return 0.25
	case rotW16:
		return 0.5
	default:
		return 1
	}
}

func worst(a, b rotationClass) rotationClass {
	if b > a {
		return b
	}
	return a
}

// Design describes one point of the pipelined-architecture design space.
type Design struct {
	Kind   Kind
	LogN   int
	P      int   // lanes (coefficients per cycle)
	Groups []int // stage grouping, e.g. [2,2,2,...] = radix-2^2; sums to LogN
	Merged bool  // negacyclic ψ merged into stage twiddles (NTT only);
	// valid only for the uniform single-group radix-2^n schedule
}

// Name renders a compact design label.
func (d Design) Name() string {
	if d.Merged {
		return fmt.Sprintf("%v radix-2^n merged", d.Kind)
	}
	uniform := true
	for _, g := range d.Groups {
		if g != d.Groups[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%v radix-2^%d", d.Kind, d.Groups[0])
	}
	return fmt.Sprintf("%v mixed%v", d.Kind, d.Groups)
}

// MultiplierCount returns the physical multiplier count (in generic
// multiplier equivalents) of the design's MDC pipeline, for a lane
// processing both the forward and the inverse transform (the client
// workload needs NTT for encryption and INTT for decryption on the same
// hardware, paper Fig. 2).
func (d Design) MultiplierCount() float64 {
	n := 1 << uint(d.LogN)
	pos := d.P / 2 // butterfly positions per stage

	if d.Merged {
		if d.Kind != NTT {
			panic("sfg: merged scheduling is an NTT (negacyclic) concept")
		}
		// Every stage position carries a generic ψ-power multiplier; the
		// merging technique also folds ψ^{-k} and N^{-1} into the inverse
		// schedule, so no pre/post/scale banks exist. This is the paper's
		// P/2·log2(N) theoretical minimum.
		return float64(pos * d.LogN)
	}

	total := 0.0
	// Walk stages, tracking position within the current group.
	stage := 0
	for gi, g := range d.Groups {
		for dIn := 0; dIn < g; dIn++ {
			lastInGroup := dIn == g-1
			lastGroup := gi == len(d.Groups)-1
			var c rotationClass
			switch {
			case lastInGroup && lastGroup:
				// Final stage of a DIF pipeline: all ω^0.
				c = rotOne
			case lastInGroup:
				// Group boundary: generic inter-group twiddles.
				c = rotGeneric
			default:
				// Intra-group rotation at depth dIn: ω_{2^(dIn+2)} class.
				switch dIn {
				case 0:
					c = rotJ
				case 1:
					c = rotW8
				case 2:
					c = rotW16
				default:
					c = rotGeneric
				}
			}
			// Time-multiplexing: a position is built if any scheduled value
			// is non-trivial; for stage sets above, every non-final stage
			// streams mixed exponents, so the class stands as computed.
			total += float64(pos) * classCost(d.Kind, c)
			stage++
		}
	}
	_ = n

	if d.Kind == NTT {
		// Separate negacyclic handling: a ψ pre-processing bank (P lanes)
		// for the forward transform and a ψ^{-1} post-processing bank for
		// the inverse. The N^{-1} scaling can be folded into the post bank
		// only when the grouping exposes a uniform final group (radix ≥ 2);
		// a pure radix-2 chain pays a separate scaling bank.
		total += float64(d.P) // pre
		total += float64(d.P) // post
		allOnes := true
		for _, g := range d.Groups {
			if g != 1 {
				allOnes = false
				break
			}
		}
		if allOnes {
			total += float64(d.P) // N^{-1} bank not foldable
		}
	}
	return total
}

// UniformGroups builds the grouping [k, k, ..., r] covering logN stages.
func UniformGroups(logN, k int) []int {
	var gs []int
	left := logN
	for left >= k {
		gs = append(gs, k)
		left -= k
	}
	if left > 0 {
		gs = append(gs, left)
	}
	return gs
}
