package hw

import (
	"repro/internal/modmul"
	"repro/internal/ntt"
	"repro/internal/sfg"
)

// Config fixes the architecture knobs that matter for area.
type Config struct {
	LogN     int // transform size the PNLs are built for (paper: 16)
	P        int // lanes per PNL (paper: 8)
	PNLs     int // pipelined NTT lanes per RSC (paper: 4)
	RSCs     int // reconfigurable streaming cores (paper: 2)
	GlobalKB float64
	LocalKB  float64
	SeedKB   float64
}

// PaperConfig is the Table II configuration.
func PaperConfig() Config {
	return Config{LogN: 16, P: 8, PNLs: 4, RSCs: 2, GlobalKB: 880, LocalKB: 440, SeedKB: 26.4}
}

// Structural parameters derived from the design packages.

// pnlMultipliers is the merged radix-2^n minimum: P/2 · log2 N (sfg).
func pnlMultipliers(cfg Config) int {
	d := sfg.Design{Kind: sfg.NTT, LogN: cfg.LogN, P: cfg.P, Merged: true}
	return int(d.MultiplierCount())
}

// pnlFIFOKB computes the commutator FIFO storage of one lane from the
// streaming model (55-bit words — the wider of the two datapath modes).
func pnlFIFOKB(cfg Config) float64 {
	tbl := ntt.MustTable(1<<uint(cfg.LogN), pickPrime(cfg.LogN))
	lane := ntt.NewStreamingLane(tbl, cfg.P)
	bits := float64(lane.TotalFIFOElems()) * FPWidth
	return bits / 8 / 1024
}

// pickPrime returns any valid NTT prime for table construction (the FIFO
// geometry depends only on N and P, not on the modulus).
func pickPrime(logN int) uint64 {
	switch {
	case logN <= 13:
		return 68718428161
	default:
		return 68718428161 // 36-bit, ≡ 1 mod 2^17 — valid through N=2^16
	}
}

// calibration constants for block-internal overheads (fit once; see
// components.go for the policy).
const (
	pnlCtrlFrac    = 0.05 // lane control, decoder interface
	mseRoutingMult = 1.43 // SIMD crossbar/routing over raw MAC area
	otfGenMults    = 38   // unified generator pipelines: ~10 per PNL
	mseMACs        = 32   // element-wise lanes matching 4×P coefficients/cycle
	mseCRTUnits    = 8    // wide accumulators for Combine-CRT
)

// PNLBlock models one pipelined NTT lane.
func PNLBlock(cfg Config) Block {
	mults := float64(pnlMultipliers(cfg))
	stages := float64(cfg.LogN)
	area := mults*ReconfigMultAreaMM2() + // reconfigurable butterfly multipliers
		mults*ReconfigAdderAreaMM2 + // reconfigurable butterfly add/sub
		SRAMAreaMM2(pnlFIFOKB(cfg)*FIFODoubleBuffer, false) + // commutator FIFOs
		stages*ShufflingAreaPerStageMM2 // 2n shuffling units
	area *= 1 + pnlCtrlFrac
	return logicBlock("PNL", area)
}

// OTFTFGenBlock models the unified on-the-fly twiddle factor generator.
func OTFTFGenBlock() Block {
	return logicBlock("Unified OTF TF Gen", float64(otfGenMults)*ReconfigMultAreaMM2())
}

// SeedMemoryBlock is the twiddle-factor seed memory.
func SeedMemoryBlock(cfg Config) Block {
	return sramBlock("Twiddle Factor Seed Memory", cfg.SeedKB, true)
}

// MSEBlock models the modular streaming engine (SIMD element-wise ops,
// Expand RNS, Combine CRT).
func MSEBlock() Block {
	mm := ModMultAreaMM2(modmul.FriendlyMontgomery)
	area := float64(mseMACs)*(mm+ModAdderAreaMM2) + float64(mseCRTUnits)*2*mm
	return simdBlock("MSE", area*mseRoutingMult)
}

// PRNGBlock models the on-chip ChaCha PRNG with its samplers. The area is
// anchored (0.069 mm²: 512-bit state registers, 4 quarter-round datapaths,
// uniform/ternary/Gaussian output stages); its smallness relative to the
// data it replaces is the architectural claim, not its precise value.
func PRNGBlock() Block {
	return simdBlock("PRNG", 0.069)
}

// LocalScratchpadBlock: single-port multi-bank 256-bit SRAM.
func LocalScratchpadBlock(cfg Config) Block {
	// Single-port local macros are ≈2× denser than the double-buffered
	// global scratchpad (Table II: 0.658/440 vs 2.632/880 per KB).
	a := cfg.LocalKB * (0.658 / 440.0)
	return Block{Name: "Local Scratchpad", AreaMM2: a, PowerW: a * PowerDensitySRAM}
}

// RSCBlock composes one reconfigurable streaming core.
func RSCBlock(cfg Config) Block {
	b := Block{Name: "RSC"}
	pnl := PNLBlock(cfg)
	pnls := Block{Name: "4x PNL"}
	for i := 0; i < cfg.PNLs; i++ {
		pnls.Children = append(pnls.Children, pnl)
	}
	pnls.Sum()
	pnls.Children = nil // collapse: report as one Table II row
	b.Children = []Block{
		pnls,
		OTFTFGenBlock(),
		SeedMemoryBlock(cfg),
		MSEBlock(),
		PRNGBlock(),
		LocalScratchpadBlock(cfg),
	}
	b.Sum()
	return b
}

// GlobalScratchpadBlock: double-buffered multi-bank 256-bit SRAM.
func GlobalScratchpadBlock(cfg Config) Block {
	return sramBlock("Global Scratchpad", cfg.GlobalKB, false)
}

// TopBlock: controller, instruction memory, decoder, DMA. Anchored row
// (0.060 mm², 0.051 W — DMA/I/O power density is unlike any logic class).
func TopBlock() Block {
	return Block{Name: "Top CTRL, DMA, Etc.", AreaMM2: 0.060, PowerW: 0.051}
}

// Chip composes the full accelerator (Table II's Total row).
func Chip(cfg Config) Block {
	chip := Block{Name: "ABC-FHE"}
	rsc := RSCBlock(cfg)
	cores := Block{Name: "2x RSC"}
	for i := 0; i < cfg.RSCs; i++ {
		cores.Children = append(cores.Children, rsc)
	}
	cores.Sum()
	chip.Children = []Block{cores, GlobalScratchpadBlock(cfg), TopBlock()}
	chip.Sum()
	return chip
}

// PaperTableII returns the published rows for comparison, in the same
// order Chip-derived rows are reported.
type TableRow struct {
	Name         string
	AreaMM2      float64
	PowerW       float64
	PaperAreaMM2 float64
	PaperPowerW  float64
}

// TableII builds the full ours-vs-paper comparison.
func TableII(cfg Config) []TableRow {
	rsc := RSCBlock(cfg)
	rows := []TableRow{}

	find := func(name string) Block {
		for _, c := range rsc.Children {
			if c.Name == name {
				return c
			}
		}
		panic("hw: missing block " + name)
	}

	add := func(name string, b Block, pa, pp float64) {
		rows = append(rows, TableRow{b.Name, b.AreaMM2, b.PowerW, pa, pp})
		_ = name
	}

	add("4x PNL", find("4x PNL"), 10.717, 1.397)
	add("OTF", find("Unified OTF TF Gen"), 0.697, 0.089)
	add("Seed", find("Twiddle Factor Seed Memory"), 0.046, 0.022)
	add("MSE", find("MSE"), 0.787, 0.298)
	add("PRNG", find("PRNG"), 0.069, 0.028)
	add("Local", find("Local Scratchpad"), 0.658, 0.323)
	add("RSC", Block{Name: "RSC", AreaMM2: rsc.AreaMM2, PowerW: rsc.PowerW}, 12.973, 2.156)

	cores := Block{Name: "2x RSC", AreaMM2: rsc.AreaMM2 * float64(cfg.RSCs), PowerW: rsc.PowerW * float64(cfg.RSCs)}
	add("cores", cores, 25.946, 4.313)
	add("gsp", GlobalScratchpadBlock(cfg), 2.632, 1.290)
	add("top", TopBlock(), 0.060, 0.051)

	chip := Chip(cfg)
	add("total", Block{Name: "Total", AreaMM2: chip.AreaMM2, PowerW: chip.PowerW}, 28.638, 5.654)
	return rows
}
