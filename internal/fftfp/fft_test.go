package fftfp

import (
	"math"
	"testing"
	"testing/quick"
)

func fullCtx() Ctx { return NewCtx(Float64Mantissa) }

func TestRoundMantissa(t *testing.T) {
	cases := []struct {
		x    float64
		mant int
		want float64
	}{
		{1.0, 10, 1.0},                   // exact values unchanged
		{1.5, 1, 1.5},                    // 1.5 = 1.1b needs exactly 1 bit
		{1.25, 1, 1.0},                   // 1.01b → round to even → 1.0
		{1.75, 1, 2.0},                   // 1.11b → 10.0b
		{-1.75, 1, -2.0},                 // sign symmetric
		{0, 5, 0},                        // zero passes
		{math.Inf(1), 5, math.Inf(1)},    // inf passes
		{3.141592653589793, 52, math.Pi}, // full width is identity
	}
	for _, c := range cases {
		if got := RoundMantissa(c.x, c.mant); got != c.want {
			t.Errorf("RoundMantissa(%v,%d)=%v want %v", c.x, c.mant, got, c.want)
		}
	}
}

// Property: rounding error is bounded by half an ulp at the target width.
func TestRoundMantissaErrorBoundQuick(t *testing.T) {
	f := func(x float64, m uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return true
		}
		mant := int(m%40) + 10 // widths 10..49
		r := RoundMantissa(x, mant)
		relErr := math.Abs(r-x) / math.Abs(x)
		return relErr <= math.Pow(2, -float64(mant)) // ≤ 2^-mant (half-ulp is 2^-(mant+1), margin 2×)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: RoundMantissa is idempotent.
func TestRoundMantissaIdempotentQuick(t *testing.T) {
	f := func(x float64, m uint8) bool {
		if math.IsNaN(x) {
			return true
		}
		mant := int(m%40) + 10
		r := RoundMantissa(x, mant)
		return RoundMantissa(r, mant) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFFTMatchesNaive(t *testing.T) {
	for _, logN := range []int{3, 4, 6, 8} {
		e := NewEmbedder(logN)
		vals := make([]Complex, e.Slots)
		for i := range vals {
			vals[i] = Complex{float64(i%5) - 2, float64((3*i)%7) - 3}
		}
		want := e.EvalNaive(vals)
		got := append([]Complex(nil), vals...)
		e.FFT(got, fullCtx())
		for i := range got {
			if d := (Complex{got[i].Re - want[i].Re, got[i].Im - want[i].Im}).Abs(); d > 1e-9*float64(e.Slots) {
				t.Fatalf("logN=%d: FFT differs from naive at %d by %g", logN, i, d)
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, logN := range []int{3, 5, 8, 10} {
		e := NewEmbedder(logN)
		msg := randomMessage(e, 7)
		vals := append([]Complex(nil), msg...)
		e.IFFT(vals, fullCtx())
		e.FFT(vals, fullCtx())
		for i := range vals {
			if d := (Complex{vals[i].Re - msg[i].Re, vals[i].Im - msg[i].Im}).Abs(); d > 1e-8 {
				t.Fatalf("logN=%d: FFT∘IFFT ≠ id at %d (err %g)", logN, i, d)
			}
		}
	}
}

func TestEncodeDecodeCoeffs(t *testing.T) {
	e := NewEmbedder(8)
	msg := randomMessage(e, 11)
	coeffs := e.EncodeToCoeffs(msg, fullCtx())
	if len(coeffs) != e.N {
		t.Fatalf("coefficient count %d", len(coeffs))
	}
	got := e.DecodeFromCoeffs(coeffs, fullCtx())
	for i := range got {
		if d := (Complex{got[i].Re - msg[i].Re, got[i].Im - msg[i].Im}).Abs(); d > 1e-8 {
			t.Fatalf("encode/decode round trip error %g at %d", d, i)
		}
	}
}

// The canonical embedding of a *real constant* polynomial is that constant
// in every slot — a structural sanity check of the 5^j indexing.
func TestConstantPolynomial(t *testing.T) {
	e := NewEmbedder(6)
	coeffs := make([]float64, e.N)
	coeffs[0] = 2.5
	got := e.DecodeFromCoeffs(coeffs, fullCtx())
	for i, v := range got {
		if math.Abs(v.Re-2.5) > 1e-10 || math.Abs(v.Im) > 1e-10 {
			t.Fatalf("slot %d = %v, want 2.5", i, v)
		}
	}
}

func TestPrecisionMonotonicIncrease(t *testing.T) {
	e := NewEmbedder(10)
	prev := -1e9
	for _, m := range []int{20, 28, 36, 44, 52} {
		r := RoundTripPrecision(e, m, 3)
		if r.Bits < prev-1.5 { // allow small noise, but the trend must rise
			t.Fatalf("precision decreased: mant %d → %.2f bits (prev %.2f)", m, r.Bits, prev)
		}
		prev = r.Bits
	}
}

func TestPrecisionSlopeNearOne(t *testing.T) {
	// Between mantissa 24 and 44 the precision should rise ≈ 1 bit per
	// mantissa bit (Fig. 3c's linear region).
	e := NewEmbedder(10)
	r1 := RoundTripPrecision(e, 24, 5)
	r2 := RoundTripPrecision(e, 44, 5)
	slope := (r2.Bits - r1.Bits) / 20
	if slope < 0.8 || slope > 1.2 {
		t.Fatalf("precision slope %.2f, want ≈ 1", slope)
	}
}

func TestBootProxyBelowRoundTrip(t *testing.T) {
	// The bootstrap shadow compounds more reduced-precision operations, so
	// its precision must not exceed the pure round trip by more than noise.
	e := NewEmbedder(10)
	for _, m := range []int{30, 43} {
		rt := RoundTripPrecision(e, m, 9)
		bp := BootPrecisionProxy(e, m, 9)
		if bp.Bits > rt.Bits+3 {
			t.Fatalf("mant %d: boot proxy %.2f implausibly above round trip %.2f",
				m, bp.Bits, rt.Bits)
		}
	}
}

func TestDropOffPoint(t *testing.T) {
	rs := []PrecisionResult{{30, 10, 9}, {31, 18, 17}, {32, 21, 20}}
	if got := DropOffPoint(rs, 19.29); got != 32 {
		t.Fatalf("DropOffPoint = %d, want 32", got)
	}
	if got := DropOffPoint(rs, 50); got != -1 {
		t.Fatalf("DropOffPoint = %d, want -1", got)
	}
}

func TestSweepShape(t *testing.T) {
	e := NewEmbedder(9)
	rs := Sweep(e, 25, 30, "roundtrip", 1)
	if len(rs) != 6 {
		t.Fatalf("sweep length %d", len(rs))
	}
	for i, r := range rs {
		if r.MantissaBits != 25+i {
			t.Fatal("sweep mantissa ordering broken")
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	e := NewEmbedder(11) // slots = 1024
	vals := randomMessage(e, 1)
	ctx := fullCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FFT(vals, ctx)
	}
}

func BenchmarkFFT1024FP55(b *testing.B) {
	e := NewEmbedder(11)
	vals := randomMessage(e, 1)
	ctx := NewCtx(FP55Mantissa)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FFT(vals, ctx)
	}
}

func TestStreamingFFTMatchesEmbedder(t *testing.T) {
	for _, logN := range []int{5, 8, 11} {
		e := NewEmbedder(logN)
		lane := NewStreamingFFT(e, 8)
		for _, mant := range []int{FP55Mantissa, Float64Mantissa} {
			ctx := NewCtx(mant)
			msg := randomMessage(e, uint64(logN))
			ref := append([]Complex(nil), msg...)
			st := append([]Complex(nil), msg...)

			e.FFT(ref, ctx)
			lane.Forward(st, ctx)
			for i := range ref {
				if ref[i] != st[i] {
					t.Fatalf("logN=%d mant=%d: streaming FFT differs at %d", logN, mant, i)
				}
			}
			e.IFFT(ref, ctx)
			lane.Inverse(st, ctx)
			for i := range ref {
				if ref[i] != st[i] {
					t.Fatalf("logN=%d mant=%d: streaming IFFT differs at %d", logN, mant, i)
				}
			}
		}
	}
}

func TestStreamingFFTStats(t *testing.T) {
	e := NewEmbedder(11) // slots = 1024
	lane := NewStreamingFFT(e, 8)
	msg := randomMessage(e, 3)
	lane.Forward(msg, fullCtx())
	// (slots/2)·log2(slots) complex butterflies, each 4 real multipliers.
	wantComplex := 512 * 10
	if lane.ComplexMuls != wantComplex {
		t.Fatalf("complex muls %d, want %d", lane.ComplexMuls, wantComplex)
	}
	if lane.RealMuls != 4*wantComplex {
		t.Fatal("Eq. 12: one complex multiply = four real multipliers")
	}
	// Fused pipeline borrows exactly the four PNLs' multiplier complement:
	// P/2 × stages × 4 = 4 × (P/2 × stages) — one PNL's worth per factor.
	if lane.BorrowedMultipliers() != 4*(8/2)*10 {
		t.Fatalf("borrowed multipliers %d", lane.BorrowedMultipliers())
	}
	if lane.InitiationInterval() != 1024/8 {
		t.Fatal("II must be slots/P")
	}
}

func TestDecodeFromCoeffsInto(t *testing.T) {
	e := NewEmbedder(6)
	msg := make([]Complex, e.Slots)
	for i := range msg {
		msg[i] = Complex{Re: float64(i%5) - 2, Im: float64(i%3) - 1}
	}
	coeffs := e.EncodeToCoeffs(msg, fullCtx())
	want := e.DecodeFromCoeffs(coeffs, fullCtx())

	vals := GetSlotSlab(e.Slots)
	got := e.DecodeFromCoeffsInto(coeffs, vals, fullCtx())
	if &got[0] != &vals[0] {
		t.Fatal("Into variant must write into the provided buffer")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: Into %v != alloc %v", i, got[i], want[i])
		}
	}
	PutSlotSlab(vals)

	// Dirty recycled slabs must not affect results.
	dirty := GetSlotSlab(e.Slots)
	for i := range dirty {
		dirty[i] = Complex{Re: 1e300, Im: -1e300}
	}
	again := e.DecodeFromCoeffsInto(coeffs, dirty, fullCtx())
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("slot %d differs on dirty slab reuse", i)
		}
	}
	PutSlotSlab(dirty)
	PutSlotSlab(nil) // no-op

	defer func() {
		if recover() == nil {
			t.Fatal("mis-sized slot buffer must panic")
		}
	}()
	e.DecodeFromCoeffsInto(coeffs, make([]Complex, e.Slots-1), fullCtx())
}
