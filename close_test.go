package abcfhe

// Close-semantics tests: the serving layer tears parties down from
// multiple paths (drain, deferred cleanup, signal handlers), so Close on
// every role must be idempotent and safe under concurrent invocation —
// a double Close must never double-close the lane engine's job channel.

import (
	"sync"
	"testing"
)

// TestCloseIdempotent: sequential double (and triple) Close on every role
// is a no-op, with and without a private engine installed.
func TestCloseIdempotent(t *testing.T) {
	for _, withWorkers := range []bool{false, true} {
		var opts []Option
		if withWorkers {
			opts = append(opts, WithWorkers(2))
		}
		owner, err := NewKeyOwner(Test, 1, 2, opts...)
		if err != nil {
			t.Fatal(err)
		}
		pk, err := owner.ExportPublicKey()
		if err != nil {
			t.Fatal(err)
		}
		enc, err := NewEncryptor(pk, 3, 4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(Test, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []interface{ Close() }{owner, enc, srv} {
			c.Close()
			c.Close()
			c.Close()
		}
	}
}

// TestCloseConcurrent: N goroutines all calling Close on the same party at
// once must not panic (run under -race in CI, this also proves the field
// access is synchronized).
func TestCloseConcurrent(t *testing.T) {
	srv, err := NewServer(Test, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			srv.Close()
		}()
	}
	close(start)
	wg.Wait()
}

// TestFacadeCloseIdempotent: the deprecated Client facade shares one
// parameter set across its three roles; double Close (and a role Close
// after the facade's) must stay a no-op.
func TestFacadeCloseIdempotent(t *testing.T) {
	c, err := NewClient(Test, 5, 6, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	c.KeyOwner().Close()
}

// TestUseAfterCloseFallsBack: a closed party falls back to the shared
// default engine and keeps working (documented behavior) — the drain path
// may still flush a response after teardown started.
func TestUseAfterCloseFallsBack(t *testing.T) {
	owner, err := NewKeyOwner(Test, 7, 8, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pk, err := owner.ExportPublicKey()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncryptor(pk, 9, 10, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	msg := testMsgs(enc.Slots(), 1)[0]
	enc.Close()
	ct, err := enc.EncodeEncrypt(msg)
	if err != nil {
		t.Fatalf("EncodeEncrypt after Close: %v", err)
	}
	owner.Close()
	got, err := owner.DecryptDecode(ct)
	if err != nil {
		t.Fatalf("DecryptDecode after Close: %v", err)
	}
	if len(got) != enc.Slots() {
		t.Fatalf("decoded %d slots, want %d", len(got), enc.Slots())
	}
}
