package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

func TestDefaultSummary(t *testing.T) {
	s := Default().Summarize()
	if s.AreaMM2 < 25 || s.AreaMM2 > 32 {
		t.Fatalf("area %.2f", s.AreaMM2)
	}
	if s.Area7nmMM2 > s.AreaMM2/20 {
		t.Fatalf("7nm area %.3f not ≪ 28nm %.3f", s.Area7nmMM2, s.AreaMM2)
	}
	if s.EncMOPs < 25 || s.EncMOPs > 29 || s.DecMOPs < 2.5 || s.DecMOPs > 3.2 {
		t.Fatalf("MOPs %.1f/%.1f off the paper's 27.0/2.9", s.EncMOPs, s.DecMOPs)
	}
}

func TestWithers(t *testing.T) {
	base := Default()
	if base.WithLanes(4).Sim.P != 4 || base.Sim.P != 8 {
		t.Fatal("WithLanes must copy, not mutate")
	}
	if base.WithDegree(13).Sim.LogN != 13 || base.Sim.LogN != 16 {
		t.Fatal("WithDegree must copy, not mutate")
	}
	if base.WithMemoryMode(sim.MemBase).Sim.Mem != sim.MemBase {
		t.Fatal("WithMemoryMode")
	}
}

func TestModes(t *testing.T) {
	s := Default()
	enc, dec := s.Mode(sched.ModeEncryptDecrypt)
	if enc.Cycles == 0 || dec.Cycles == 0 {
		t.Fatal("both directions must run in mixed mode")
	}
	enc2, dec2 := s.Mode(sched.ModeDualEncrypt)
	if enc2.ComputeCycles >= enc.ComputeCycles {
		t.Fatal("dual encrypt must be faster")
	}
	if dec2.Cycles != 0 {
		t.Fatal("dual encrypt mode must not decrypt")
	}
}

func TestChipTree(t *testing.T) {
	chip := Default().Chip()
	if len(chip.Children) == 0 {
		t.Fatal("chip must have children")
	}
}
