package sim

import (
	"fmt"

	"repro/internal/ntt"
)

// Discrete-event validation of the streaming model. The analytic
// simulator (sim.go) asserts two properties of a streaming pipeline:
//
//  1. steady-state initiation interval N/P with a one-time fill latency, and
//  2. operation latency = max(compute stream, DRAM stream) when the input
//     is bandwidth-throttled.
//
// PipelineSim checks both from first principles: it moves "beats" (groups
// of P coefficients) through the PNL's stage queue structure cycle by
// cycle, honoring per-stage latencies and single-issue ports, and tracks
// commutator FIFO occupancy against the depths the hardware model sizes
// (ntt.StreamingLane.FIFODepths → SRAM area in internal/hw).

// PipelineSim models one PNL as a chain of stages with fixed latencies
// and II = 1 per beat.
type PipelineSim struct {
	P         int
	latencies []int // per-stage beat latency (butterfly depth + commutator wait)
	caps      []int // per-stage FIFO capacity in beats
}

// NewPipelineSim derives the stage structure from the streaming lane
// geometry: stage s waits for its commutator to hold half its FIFO before
// producing, and buffers at most the FIFO depth.
func NewPipelineSim(logN, p, butterflyLatency int) *PipelineSim {
	tbl := ntt.MustTable(1<<uint(logN), 68718428161)
	lane := ntt.NewStreamingLane(tbl, p)
	lane.ButterflyLatency = butterflyLatency
	depths := lane.FIFODepths()
	ps := &PipelineSim{P: p}
	for _, d := range depths {
		// A stage's commutator delays the beat stream by half its FIFO
		// depth (one delay line of the pair), matching the analytic
		// StreamingLane.FillLatency term exactly.
		wait := d / 2
		if wait < 1 {
			wait = 1
		}
		lat := butterflyLatency + wait
		ps.latencies = append(ps.latencies, lat)
		// A beat occupies the stage for its latency at II=1; capacity is
		// that residency plus double-buffer slack.
		ps.caps = append(ps.caps, lat+2)
	}
	return ps
}

// RunResult reports a discrete run.
type RunResult struct {
	// DoneCycle[b] is the cycle the b-th beat leaves the last stage.
	DoneCycle []int
	// MaxOccupancy[s] is the peak number of beats resident in stage s.
	MaxOccupancy []int
	// TotalCycles is the completion time of the final beat.
	TotalCycles int
}

// Run pushes beats whose arrival cycles are given (non-decreasing) through
// the pipeline and returns completion statistics. Arrival b at cycle
// arrivals[b]; each stage forwards a beat no earlier than (arrival at the
// stage + latency) and no faster than one beat per cycle.
func (ps *PipelineSim) Run(arrivals []int) RunResult {
	nb := len(arrivals)
	res := RunResult{
		DoneCycle:    make([]int, nb),
		MaxOccupancy: make([]int, len(ps.latencies)),
	}
	// in[b] = cycle beat b enters current stage; out[b] = cycle it leaves.
	in := append([]int(nil), arrivals...)
	out := make([]int, nb)
	for s, lat := range ps.latencies {
		prevOut := -1
		for b := 0; b < nb; b++ {
			t := in[b] + lat
			if t <= prevOut {
				t = prevOut + 1
			}
			out[b] = t
			prevOut = t
		}
		// Occupancy: beats that have entered but not left at each event
		// point. Scan with two pointers over the sorted sequences.
		occ, maxOcc, j := 0, 0, 0
		for b := 0; b < nb; b++ {
			// beat b enters at in[b]; release all beats with out ≤ in[b].
			for j < nb && out[j] <= in[b] {
				occ--
				j++
			}
			occ++
			if occ > maxOcc {
				maxOcc = occ
			}
		}
		res.MaxOccupancy[s] = maxOcc
		in, out = out, in
	}
	copy(res.DoneCycle, in)
	res.TotalCycles = in[nb-1]
	return res
}

// BackToBack returns the arrival schedule of k transforms streamed with no
// gaps: beat b of transform t arrives at cycle t·(N/P) + b.
func BackToBack(logN, p, k int) []int {
	beats := (1 << uint(logN)) / p
	out := make([]int, 0, beats*k)
	c := 0
	for t := 0; t < k; t++ {
		for b := 0; b < beats; b++ {
			out = append(out, c)
			c++
		}
	}
	return out
}

// Throttled returns an arrival schedule limited to one beat per
// `interval` cycles — the shape of a DRAM-starved input stream.
func Throttled(logN, p, interval int) []int {
	beats := (1 << uint(logN)) / p
	out := make([]int, beats)
	for b := range out {
		out[b] = b * interval
	}
	return out
}

// ValidateAnalyticModel cross-checks the discrete pipeline against the
// analytic StreamingLane cycle model and returns an error describing any
// divergence beyond tolerance.
func ValidateAnalyticModel(logN, p int) error {
	ps := NewPipelineSim(logN, p, 4)
	tbl := ntt.MustTable(1<<uint(logN), 68718428161)
	lane := ntt.NewStreamingLane(tbl, p)

	for _, k := range []int{1, 4} {
		discrete := ps.Run(BackToBack(logN, p, k)).TotalCycles
		analytic := lane.TransformCycles(k)
		diff := discrete - analytic
		if diff < 0 {
			diff = -diff
		}
		// The models share II exactly; fills may differ by the commutator
		// rounding (≤ one FIFO's worth of beats per stage).
		tol := lane.Stages() * 4
		if tol < analytic/10 {
			tol = analytic / 10
		}
		if diff > tol {
			return fmt.Errorf("sim: discrete %d vs analytic %d cycles (k=%d) exceeds tolerance %d",
				discrete, analytic, k, tol)
		}
	}
	return nil
}
