// Package fftfp implements the floating-point side of ABC-FHE's
// reconfigurable Fourier engine: the CKKS canonical-embedding FFT/IFFT
// evaluated in *configurable-mantissa* floating point.
//
// The paper's RFE runs I/FFT in a custom 55-bit format (1 sign + 11
// exponent + 43 mantissa bits, "FP55") chosen by sweeping the mantissa
// width against bootstrapping precision (Fig. 3c): ≥43 mantissa bits keep
// Boot. prec. at 23.39 bits, above the 19.29-bit threshold that prior work
// (SHARP) established for AI workloads. This package emulates any mantissa
// width m ≤ 52 by rounding every primitive operation's float64 result to m
// fractional mantissa bits (round-to-nearest-even), which is exact FP-m
// emulation up to double-rounding effects that are far below the measured
// error floors.
package fftfp

import "math"

// FP55Mantissa is the mantissa width of the paper's custom format.
const FP55Mantissa = 43

// Float64Mantissa is the native float64 mantissa width (no emulation
// beyond this).
const Float64Mantissa = 52

// RoundMantissa rounds x to `mant` explicit mantissa bits with
// round-to-nearest-even. mant ≥ 52 returns x unchanged. Zeros, infinities
// and NaNs pass through.
func RoundMantissa(x float64, mant int) float64 {
	if mant >= Float64Mantissa {
		return x
	}
	if mant < 1 {
		panic("fftfp: mantissa width must be ≥ 1")
	}
	b := math.Float64bits(x)
	if exp := (b >> 52) & 0x7FF; exp == 0 || exp == 0x7FF {
		return x // zero/subnormal/inf/NaN: leave untouched
	}
	drop := uint(Float64Mantissa - mant)
	mask := (uint64(1) << drop) - 1
	frac := b & mask
	half := uint64(1) << (drop - 1)
	b &^= mask
	if frac > half || (frac == half && (b>>drop)&1 == 1) {
		b += uint64(1) << drop // may carry into the exponent: correct rounding
	}
	return math.Float64frombits(b)
}

// Ctx is an arithmetic context with a fixed mantissa width. The zero value
// is invalid; use NewCtx. Ctx is tiny and copied by value.
type Ctx struct {
	Mant int
}

// NewCtx returns a context emulating `mant` mantissa bits (use
// Float64Mantissa for native precision).
func NewCtx(mant int) Ctx {
	if mant < 1 {
		panic("fftfp: mantissa width must be ≥ 1")
	}
	if mant > Float64Mantissa {
		mant = Float64Mantissa
	}
	return Ctx{Mant: mant}
}

func (c Ctx) round(x float64) float64 { return RoundMantissa(x, c.Mant) }

// Complex is a complex number whose components live in a reduced-precision
// context. Operations take the context explicitly so tables can be stored
// once and used at several precisions.
type Complex struct {
	Re, Im float64
}

// Add returns a+b with each component rounded.
func (c Ctx) Add(a, b Complex) Complex {
	return Complex{c.round(a.Re + b.Re), c.round(a.Im + b.Im)}
}

// Sub returns a-b with each component rounded.
func (c Ctx) Sub(a, b Complex) Complex {
	return Complex{c.round(a.Re - b.Re), c.round(a.Im - b.Im)}
}

// Mul returns a·b using the 4-multiplier schoolbook form the RFE implements
// (paper Eq. 12: (ac-bd) + i(ad+bc)), rounding after every primitive
// multiply and add exactly as the hardware datapath would.
func (c Ctx) Mul(a, b Complex) Complex {
	ac := c.round(a.Re * b.Re)
	bd := c.round(a.Im * b.Im)
	ad := c.round(a.Re * b.Im)
	bc := c.round(a.Im * b.Re)
	return Complex{c.round(ac - bd), c.round(ad + bc)}
}

// Scale returns a·s for real s, rounded.
func (c Ctx) Scale(a Complex, s float64) Complex {
	return Complex{c.round(a.Re * s), c.round(a.Im * s)}
}

// RoundC rounds both components of a into the context's precision; used to
// quantize twiddle tables before use.
func (c Ctx) RoundC(a Complex) Complex {
	return Complex{c.round(a.Re), c.round(a.Im)}
}

// Abs returns |a| in full precision (measurement only, not datapath).
func (a Complex) Abs() float64 { return math.Hypot(a.Re, a.Im) }
