// Package ring implements the RNS polynomial ring R_Q = Z_Q[X]/(X^N+1)
// that CKKS ciphertexts live in: polynomials stored limb-wise, with
// per-limb NTT transforms and coefficient-wise arithmetic.
//
// This is the data structure streamed through ABC-FHE's reconfigurable
// streaming cores: one limb is one "Ring #i" pass through a pipelined NTT
// lane (paper Fig. 2a/3b).
package ring

import (
	"fmt"

	"repro/internal/ntt"
	"repro/internal/prng"
	"repro/internal/rns"
)

// Ring bundles a degree, an RNS basis, and per-limb NTT tables.
type Ring struct {
	N      int
	LogN   int
	Basis  *rns.Basis
	Tables []*ntt.Table // one per limb
}

// NewRing constructs the ring of degree n (power of two) over the given
// prime limbs; every prime must satisfy q ≡ 1 mod 2n.
func NewRing(n int, primes []uint64) (*Ring, error) {
	basis, err := rns.NewBasis(primes)
	if err != nil {
		return nil, err
	}
	r := &Ring{N: n, Basis: basis}
	for n>>uint(r.LogN+1) > 0 {
		r.LogN++
	}
	if 1<<uint(r.LogN) != n {
		return nil, fmt.Errorf("ring: N=%d is not a power of two", n)
	}
	for _, q := range primes {
		t, err := ntt.NewTable(n, q)
		if err != nil {
			return nil, err
		}
		r.Tables = append(r.Tables, t)
	}
	return r, nil
}

// MustRing panics on error.
func MustRing(n int, primes []uint64) *Ring {
	r, err := NewRing(n, primes)
	if err != nil {
		panic(err)
	}
	return r
}

// K returns the number of limbs.
func (r *Ring) K() int { return r.Basis.K() }

// AtLevel returns a view of the ring restricted to the first `level` limbs.
// Tables are shared, so the view is cheap.
func (r *Ring) AtLevel(level int) *Ring {
	if level < 1 || level > r.K() {
		panic("ring: level out of range")
	}
	return &Ring{
		N:      r.N,
		LogN:   r.LogN,
		Basis:  r.Basis.Sub(level),
		Tables: r.Tables[:level],
	}
}

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j mod prime i.
// IsNTT records the current domain.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial with r.K() limbs.
func (r *Ring) NewPoly() *Poly {
	limbs := make([][]uint64, r.K())
	backing := make([]uint64, r.K()*r.N)
	for i := range limbs {
		limbs[i] = backing[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return &Poly{Coeffs: limbs}
}

// CopyPoly returns a deep copy.
func (r *Ring) CopyPoly(p *Poly) *Poly {
	out := r.NewPoly()
	for i := range p.Coeffs {
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	out.IsNTT = p.IsNTT
	return out
}

// Level returns the number of limbs of p (which may be fewer than the
// ring's if p came from a lower level).
func (p *Poly) Level() int { return len(p.Coeffs) }

// NTT transforms every limb to the evaluation domain in place.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT on already-transformed poly")
	}
	for i := range p.Coeffs {
		r.Tables[i].Forward(p.Coeffs[i])
	}
	p.IsNTT = true
}

// INTT transforms back to the coefficient domain in place.
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT on coefficient-domain poly")
	}
	for i := range p.Coeffs {
		r.Tables[i].Inverse(p.Coeffs[i])
	}
	p.IsNTT = false
}

func (r *Ring) checkCompat(a, b *Poly) {
	if a.Level() != b.Level() {
		panic("ring: level mismatch")
	}
	if a.IsNTT != b.IsNTT {
		panic("ring: domain mismatch")
	}
}

// Add sets out = a + b (limb-wise). out may alias a or b.
func (r *Ring) Add(a, b, out *Poly) {
	r.checkCompat(a, b)
	for i := range a.Coeffs {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Add(ai[j], bi[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out *Poly) {
	r.checkCompat(a, b)
	for i := range a.Coeffs {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Sub(ai[j], bi[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out *Poly) {
	for i := range a.Coeffs {
		m := r.Basis.Moduli[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Neg(ai[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeffs sets out = a ⊙ b (pointwise). Both operands must be in the NTT
// domain — pointwise products in the coefficient domain are not ring
// products, and the panic guards against that misuse.
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	r.checkCompat(a, b)
	if !a.IsNTT {
		panic("ring: MulCoeffs requires NTT domain")
	}
	for i := range a.Coeffs {
		m := r.Basis.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Mul(ai[j], bi[j])
		}
	}
	out.IsNTT = true
}

// MulScalar sets out = a · s for a word scalar s.
func (r *Ring) MulScalar(a *Poly, s uint64, out *Poly) {
	for i := range a.Coeffs {
		m := r.Basis.Moduli[i]
		sc := s % m.Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			oi[j] = m.Mul(ai[j], sc)
		}
	}
	out.IsNTT = a.IsNTT
}

// Sampling ---------------------------------------------------------------

// UniformPoly fills p with independent uniform residues per limb (a fresh
// mask "a"; on hardware this streams straight out of the PRNG).
func (r *Ring) UniformPoly(src *prng.Source, p *Poly) {
	for i := range p.Coeffs {
		src.UniformPoly(p.Coeffs[i], r.Basis.Moduli[i].Q)
	}
	p.IsNTT = false
}

// sharedSigned samples one signed value per coefficient and expands it
// consistently into every limb (the same underlying integer polynomial).
func (r *Ring) sharedSigned(p *Poly, sample func() int64) {
	n := r.N
	for j := 0; j < n; j++ {
		v := sample()
		for i := range p.Coeffs {
			p.Coeffs[i][j] = r.Basis.Moduli[i].FromCentered(v)
		}
	}
	p.IsNTT = false
}

// TernaryPoly fills p with a shared uniform-ternary polynomial across all
// limbs (encryption randomness u, secret keys).
func (r *Ring) TernaryPoly(src *prng.Source, p *Poly) {
	r.sharedSigned(p, src.TernarySample)
}

// GaussianPoly fills p with a shared discrete-Gaussian polynomial (errors).
func (r *Ring) GaussianPoly(src *prng.Source, p *Poly) {
	r.sharedSigned(p, src.GaussianSample)
}

// Equal reports deep equality (same domain, same residues).
func (r *Ring) Equal(a, b *Poly) bool {
	if a.IsNTT != b.IsNTT || a.Level() != b.Level() {
		return false
	}
	for i := range a.Coeffs {
		for j := range a.Coeffs[i] {
			if a.Coeffs[i][j] != b.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}
