package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	abcfhe "repro"
	"repro/internal/serve"
)

// runServe hosts the throughput service (internal/serve): session
// registration over evaluation-key blobs, the /v1/eval/{op} surface,
// /metrics and /debug/pprof, with a byte-budgeted evaluation-key cache
// and bounded-queue backpressure. SIGTERM/SIGINT starts a graceful
// drain: stop accepting, finish queued work, then tear down.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "listen address (host:port; :0 picks a free port)")
	cacheBytes := fs.Int64("cache-bytes", 1<<30, "evaluation-key cache budget in bytes (oversized blobs get 413)")
	maxInflight := fs.Int("max-inflight", 256, "accepted-but-unfinished request bound; excess gets 429 + Retry-After")
	workers := fs.Int("workers", 2, "concurrent dispatch batches (each op also fans across lanes)")
	lanes := fs.Int("lanes", 0, "software PNL lanes per op (0 = GOMAXPROCS, 1 = serial)")
	backend := fs.String("backend", "", "execution backend: fast or portable (default: $ABCFHE_BACKEND or fast)")
	spoolDir := fs.String("spool-dir", "", "directory for evicted key blobs (default: private temp dir)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight work on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc, err := serve.New(serve.Config{
		CacheBytes:  *cacheBytes,
		MaxInflight: *maxInflight,
		Workers:     *workers,
		SpoolDir:    *spoolDir,
		Options:     []abcfhe.Option{abcfhe.WithWorkers(*lanes), abcfhe.WithBackend(*backend)},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	httpSrv := &http.Server{Handler: svc, ReadHeaderTimeout: 10 * time.Second}
	logger := log.New(os.Stderr, "abc-fhe serve: ", log.LstdFlags)
	logger.Printf("listening on http://%s (cache %.1f MiB, max-inflight %d, workers %d)",
		ln.Addr(), float64(*cacheBytes)/(1<<20), *maxInflight, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	case got := <-sig:
		logger.Printf("%v: draining (timeout %s)", got, *drainTimeout)
		svc.Drain() // new sessions get 503 while queued work completes
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("drain timeout: %v", err)
			httpSrv.Close()
		}
		if err := svc.Close(); err != nil {
			return err
		}
		logger.Printf("drained")
		return nil
	}
}
