// Quickstart: the role-separated deployment the paper assumes, as three
// parties exchanging nothing but bytes — a key owner, an encrypting
// device holding only the public key, and a keyless evaluation server.
package main

import (
	"fmt"
	"log"

	abcfhe "repro"
)

func main() {
	// Party 1 — the key owner, with a 128-bit seed: every key derives from
	// it, which is exactly what lets the accelerator keep only the seed on
	// chip (paper §IV-B). The owner exports the public key as bytes.
	owner, err := abcfhe.NewKeyOwner(abcfhe.Test, 42, 43)
	if err != nil {
		log.Fatal(err)
	}
	pkBytes, err := owner.ExportPublicKey()
	if err != nil {
		log.Fatal(err)
	}

	// Party 2 — an encrypting device, built from the public-key bytes
	// alone (the blob embeds the parameter spec). It never sees secret
	// material; its own seed drives the encryption randomness.
	device, err := abcfhe.NewEncryptor(pkBytes, 7, 8)
	if err != nil {
		log.Fatal(err)
	}

	// The message: any complex vector with |values| ≤ 1, up to N/2 slots.
	msg := []complex128{0.5, -0.25, 0.125 + 0.5i, -0.75i}

	// Device, outbound: encode (IFFT + Expand RNS) then encrypt
	// (PRNG + NTT + public-key multiply-add), then serialize for the wire.
	ct, err := device.EncodeEncrypt(msg)
	if err != nil {
		log.Fatal(err)
	}
	upload, err := device.SerializeCiphertext(ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted %d slots into a depth-%d ciphertext (%d wire bytes)\n",
		len(msg), ct.Level, len(upload))

	// Party 3 — the server: homomorphic work without any key material —
	// compute 2x + x = 3x, then drop to the 2-limb state clients receive.
	server, err := abcfhe.NewServer(abcfhe.Test)
	if err != nil {
		log.Fatal(err)
	}
	recv, err := server.DeserializeCiphertext(upload)
	if err != nil {
		log.Fatal(err)
	}
	doubled, err := server.Add(recv, recv)
	if err != nil {
		log.Fatal(err)
	}
	tripled, err := server.Add(doubled, recv)
	if err != nil {
		log.Fatal(err)
	}
	low, err := server.DropLevel(tripled, 2)
	if err != nil {
		log.Fatal(err)
	}
	reply, err := server.SerializeCiphertext(low)
	if err != nil {
		log.Fatal(err)
	}

	// Back at the key owner: decrypt (NTT·s + INTT) and decode (CRT + FFT).
	replyCt, err := owner.DeserializeCiphertext(reply)
	if err != nil {
		log.Fatal(err)
	}
	got, err := owner.DecryptDecode(replyCt)
	if err != nil {
		log.Fatal(err)
	}
	for i, want := range msg {
		fmt.Printf("slot %d: got %7.4f%+7.4fi  want %7.4f%+7.4fi\n",
			i, real(got[i]), imag(got[i]), 3*real(want), 3*imag(want))
	}

	// The modeled accelerator card for the same workflow at paper scale.
	s := abcfhe.NewAccelerator().Summarize()
	fmt.Printf("\nABC-FHE model: enc %.3f ms, dec %.3f ms, %.1f mm², %.2f W @28nm\n",
		s.EncMS, s.DecMS, s.AreaMM2, s.PowerW)
}
