package ntt

// Lazy-reduction forward NTT: the software analogue of what the RFE's
// 44-bit datapath headroom buys in hardware. Limb primes are ≤ 36 bits
// while the datapath is 44 bits wide (paper §III), so butterfly outputs
// can stay in the extended range [0, 4q) across stages, skipping the
// conditional corrections; a single final pass normalizes into [0, q).
//
// The classic formulation (Harvey, "Faster arithmetic for number-theoretic
// transforms"): with inputs in [0, 4q), compute
//
//	u' = u - (u ≥ 2q ? 2q : 0)        — one conditional subtraction
//	v' = MRed(v, w)                   — result in [0, 2q) (lazy Montgomery)
//	out0 = u' + v'          ∈ [0, 4q)
//	out1 = u' - v' + 2q     ∈ [0, 4q)
//
// Correct whenever 4q < 2^62 (true for every limb width used here).

// ForwardLazy computes the forward negacyclic NTT with lazy reduction.
// Input in [0, q), output in [0, q) (normalized in the final sweep);
// intermediate values roam [0, 4q).
func (t *Table) ForwardLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.Mod
	q := m.Q
	twoQ := 2 * q
	for mm, tt := 1, t.N>>1; mm < t.N; mm, tt = mm<<1, tt>>1 {
		for i := 0; i < mm; i++ {
			s := t.PsiRev[mm+i]
			j1 := 2 * i * tt
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := m.MRedMulLazy(a[j+tt], s) // ∈ [0, 2q)
				a[j] = u + v
				a[j+tt] = u - v + twoQ
			}
		}
	}
	for j := range a {
		v := a[j]
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}
