package ckks

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ring"
)

// Evaluation-key wire format. Like the other key blobs (keyserialize.go)
// it embeds the full ParamSpec, so a server can bootstrap from the bytes
// alone, and packs residues at PackedWordBits. Unlike public/secret keys
// it carries a sub-header describing the set's shape — gadget digit count,
// depth cap, which rotation steps are present — because the receiver must
// know the blob's geometry before allocating anything.
//
// Layout (little-endian), after the 14-byte key header (kind 'E'):
//
//	gadget u8 (0 BV, 1 hybrid) | digits u8 | maxLevel u8 |
//	flags u8 (bit0 relin, bit1 conjugate) |
//	domain u8 (must be 0: coefficient) | rotCount u16 |
//	rotCount × step u32 (strictly ascending, in [1, N/2)) |
//	packed residues, PackedWordBits each, coefficient domain:
//	  keys in order relin?, conjugate?, rotations (ascending step);
//	  BV     — per key: for i < maxLevel, t < digits: K0[i][t] then
//	           K1[i][t], each with maxLevel limbs;
//	  hybrid — per key: for j < ⌈maxLevel/α⌉: H0[j] then H1[j], each with
//	           maxLevel+α limbs over the extended QP basis (digits
//	           carries α and must equal the spec's specialLimbs).
//
// Switching keys live and compute in the NTT domain, but the wire keeps
// the repo-wide convention that public bytes travel in the coefficient
// domain: the marshaler INTTs each polynomial and the unmarshaler
// transforms back (exact round trip — re-marshal is byte-identical). The
// domain byte exists so a forged blob claiming NTT-domain payload is
// rejected with a typed error instead of silently mis-interpreted; the
// gadget byte plays the same role for the decomposition geometry — a
// hybrid blob replayed at a parameter set without special primes is a
// typed error, never a panic or a silent mis-parse.
const (
	// KeyKindEval is the evaluation-key discriminator at byte 5.
	KeyKindEval byte = 'E'

	evalFlagRelin = 1 << 0
	evalFlagConj  = 1 << 1

	// evalMaxRotations bounds the rotation count a header may claim (the
	// step space itself is < N/2 ≤ 2^16, and the u16 count field matches).
	evalMaxRotations = 1 << 16
)

// EvalKeyInfo describes an evaluation-key blob's geometry — everything
// needed to compute its exact wire size from the header alone. For
// GadgetBV, Digits is the digit count T; for GadgetHybrid it carries the
// group size α (which the embedded spec's SpecialLimbs must match).
type EvalKeyInfo struct {
	Gadget   Gadget
	Digits   int
	MaxLevel int
	HasRelin bool
	HasConj  bool
	Steps    []int // ascending, normalized
}

// keyCount is the number of switching keys the blob carries.
func (info EvalKeyInfo) keyCount() int {
	n := len(info.Steps)
	if info.HasRelin {
		n++
	}
	if info.HasConj {
		n++
	}
	return n
}

func evalHeaderLen(rotCount int) int {
	return keyHeaderLen() + 1 + 1 + 1 + 1 + 1 + 2 + 4*rotCount
}

// EvalKeyWireBytes computes the exact blob size implied by a spec and an
// info block — from headers alone, without building Parameters, so
// wire-facing constructors can reject length-mismatched blobs before
// paying for prime generation or any payload-proportional allocation.
// Returns 0 for a geometry the spec cannot host (hybrid info over a spec
// without special primes) so length checks against it always fail.
func EvalKeyWireBytes(spec ParamSpec, info EvalKeyInfo) int {
	n := 1 << uint(spec.LogN)
	var limbTotal int // packed limbs across one key's polynomials
	switch info.Gadget {
	case GadgetHybrid:
		alpha := spec.SpecialLimbs
		if alpha < 1 || info.Digits != alpha {
			return 0
		}
		dnum := (info.MaxLevel + alpha - 1) / alpha
		limbTotal = dnum * 2 * (info.MaxLevel + alpha)
	default:
		limbTotal = info.MaxLevel * info.Digits * 2 * info.MaxLevel
	}
	return evalHeaderLen(len(info.Steps)) + (info.keyCount()*limbTotal*n*PackedWordBits+7)/8
}

// EvaluationKeyWireBytes reports the packed wire size of a key set at the
// given depth with rotCount rotation steps (+ conjugation when conj),
// built for the given gadget.
func (p *Parameters) EvaluationKeyWireBytes(maxLevel, rotCount int, conj bool, gadget Gadget) int {
	steps := make([]int, rotCount)
	digits := p.digitsPerLimb()
	if gadget == GadgetHybrid {
		digits = p.SpecialLimbs
	}
	return EvalKeyWireBytes(p.Spec(), EvalKeyInfo{
		Gadget: gadget, Digits: digits, MaxLevel: maxLevel,
		HasRelin: true, HasConj: conj, Steps: steps,
	})
}

// ReadEvalKeyInfo parses and validates the headers of an evaluation-key
// blob, returning the embedded spec and geometry. It never allocates
// proportionally to attacker-claimed sizes (the steps slice is bounded by
// the actual bytes present).
func ReadEvalKeyInfo(data []byte) (ParamSpec, EvalKeyInfo, error) {
	var info EvalKeyInfo
	spec, kind, err := ReadKeySpec(data)
	if err != nil {
		return ParamSpec{}, info, err
	}
	if kind != KeyKindEval {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: kind 0x%02x, want 0x%02x", kind, KeyKindEval)
	}
	if len(data) < evalHeaderLen(0) {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: truncated sub-header")
	}
	off := keyHeaderLen()
	gadget := data[off]
	info.Digits = int(data[off+1])
	info.MaxLevel = int(data[off+2])
	flags := data[off+3]
	domain := data[off+4]
	rotCount := int(binary.LittleEndian.Uint16(data[off+5:]))

	if gadget != byte(GadgetBV) && gadget != byte(GadgetHybrid) {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: unknown gadget type 0x%02x", gadget)
	}
	info.Gadget = Gadget(gadget)
	if flags&^byte(evalFlagRelin|evalFlagConj) != 0 {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: unknown flag bits 0x%02x", flags)
	}
	info.HasRelin = flags&evalFlagRelin != 0
	info.HasConj = flags&evalFlagConj != 0
	if domain != 0 {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: NTT-tagged payload (domain byte 0x%02x); evaluation keys travel in the coefficient domain", domain)
	}
	if info.Digits < 1 || info.Digits > 64 {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: digit count %d out of range", info.Digits)
	}
	if info.Gadget == GadgetHybrid && info.Digits != spec.SpecialLimbs {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: hybrid group size %d does not match the embedded spec's %d special primes",
			info.Digits, spec.SpecialLimbs)
	}
	if info.MaxLevel < 1 || info.MaxLevel > spec.Limbs {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: depth %d not in [1, %d]", info.MaxLevel, spec.Limbs)
	}
	if rotCount >= evalMaxRotations {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: rotation count %d out of range", rotCount)
	}
	if len(data) < evalHeaderLen(rotCount) {
		return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: truncated rotation table")
	}
	half := 1 << uint(spec.LogN-1)
	info.Steps = make([]int, rotCount)
	prev := 0
	for i := range info.Steps {
		s := int(binary.LittleEndian.Uint32(data[evalHeaderLen(i):]))
		if s <= prev || s >= half {
			return ParamSpec{}, info, fmt.Errorf("ckks: eval keys: rotation step %d not ascending in [1, %d)", s, half)
		}
		info.Steps[i] = s
		prev = s
	}
	return spec, info, nil
}

// marshalEvalPoly writes one switching-key polynomial (NTT domain, depth
// limbs) in the coefficient domain through pooled scratch.
func marshalEvalPoly(rl *ring.Ring, poly *ring.Poly, w *bitWriter) {
	c := rl.GetPolyCopy(poly)
	rl.INTT(c)
	for i := range c.Coeffs {
		for _, v := range c.Coeffs[i] {
			w.write(v, PackedWordBits)
		}
	}
	rl.PutPoly(c)
}

// MarshalEvaluationKeySet serializes ks in the packed evaluation-key wire
// format. The encoding is canonical: rotation keys are ordered by
// ascending step, and unmarshal∘marshal is the identity on valid blobs.
func (p *Parameters) MarshalEvaluationKeySet(ks *EvaluationKeySet) ([]byte, error) {
	if ks == nil {
		return nil, fmt.Errorf("ckks: marshal eval keys: nil set")
	}
	if p.LimbBits > PackedWordBits {
		return nil, fmt.Errorf("ckks: packed encoding needs limbs ≤ %d bits", PackedWordBits)
	}
	if ks.MaxLevel < 1 || ks.MaxLevel > p.MaxLevel() {
		return nil, fmt.Errorf("ckks: marshal eval keys: depth %d out of range", ks.MaxLevel)
	}
	if ks.Gadget == GadgetHybrid && p.SpecialLimbs == 0 {
		return nil, fmt.Errorf("ckks: marshal eval keys: hybrid set over parameters without special primes")
	}
	steps := ks.Steps()
	digits := p.digitsPerLimb()
	if ks.Gadget == GadgetHybrid {
		digits = p.SpecialLimbs
	}
	info := EvalKeyInfo{
		Gadget: ks.Gadget, Digits: digits, MaxLevel: ks.MaxLevel,
		HasRelin: ks.Rlk != nil, HasConj: ks.Conj != nil, Steps: steps,
	}

	var ksks []*SwitchingKey
	if ks.Rlk != nil {
		ksks = append(ksks, ks.Rlk.K)
	}
	if ks.Conj != nil {
		ksks = append(ksks, ks.Conj.K)
	}
	for _, s := range steps {
		if s < 1 || s >= p.Slots() {
			return nil, fmt.Errorf("ckks: marshal eval keys: rotation step %d out of range", s)
		}
		ksks = append(ksks, ks.Rot[s].K)
	}
	dnum := 0
	if ks.Gadget == GadgetHybrid {
		dnum = p.DnumAt(ks.MaxLevel)
	}
	for _, ksk := range ksks {
		if ksk.Gadget != ks.Gadget || ksk.Level != ks.MaxLevel {
			return nil, fmt.Errorf("ckks: marshal eval keys: key shape (gadget %v, level %d) does not match set (gadget %v, level %d)",
				ksk.Gadget, ksk.Level, ks.Gadget, ks.MaxLevel)
		}
		switch ks.Gadget {
		case GadgetHybrid:
			if ksk.Alpha != info.Digits || len(ksk.H0) != dnum || len(ksk.H1) != dnum {
				return nil, fmt.Errorf("ckks: marshal eval keys: hybrid key rows (α %d, %d groups) do not match set geometry (α %d, %d groups)",
					ksk.Alpha, len(ksk.H0), info.Digits, dnum)
			}
		default:
			if ksk.Digits != info.Digits {
				return nil, fmt.Errorf("ckks: marshal eval keys: key digits %d do not match set digits %d", ksk.Digits, info.Digits)
			}
		}
	}

	out := make([]byte, EvalKeyWireBytes(p.Spec(), info))
	if err := p.putKeyHeader(out, KeyKindEval); err != nil {
		return nil, err
	}
	off := keyHeaderLen()
	out[off] = byte(info.Gadget)
	out[off+1] = byte(info.Digits)
	out[off+2] = byte(info.MaxLevel)
	var flags byte
	if info.HasRelin {
		flags |= evalFlagRelin
	}
	if info.HasConj {
		flags |= evalFlagConj
	}
	out[off+3] = flags
	out[off+4] = 0 // coefficient-domain payload
	binary.LittleEndian.PutUint16(out[off+5:], uint16(len(steps)))
	for i, s := range steps {
		binary.LittleEndian.PutUint32(out[evalHeaderLen(i):], uint32(s))
	}

	w := newBitWriter(out[evalHeaderLen(len(steps)):])
	if ks.Gadget == GadgetHybrid {
		rqp := p.RingQPAt(ks.MaxLevel)
		for _, ksk := range ksks {
			for j := 0; j < dnum; j++ {
				marshalEvalPoly(rqp, ksk.H0[j], w)
				marshalEvalPoly(rqp, ksk.H1[j], w)
			}
		}
	} else {
		rl := p.RingAt(ks.MaxLevel)
		for _, ksk := range ksks {
			for i := 0; i < ks.MaxLevel; i++ {
				for t := 0; t < info.Digits; t++ {
					marshalEvalPoly(rl, ksk.K0[i][t], w)
					marshalEvalPoly(rl, ksk.K1[i][t], w)
				}
			}
		}
	}
	w.flush()
	return out, nil
}

// unmarshalEvalPoly reads one depth-limb polynomial, validates every
// residue, and transforms it back to the NTT domain the keys compute in.
func unmarshalEvalPoly(rl *ring.Ring, r *bitReader) (*ring.Poly, error) {
	poly := rl.NewPoly()
	for i := range poly.Coeffs {
		q := rl.Basis.Moduli[i].Q
		for j := range poly.Coeffs[i] {
			c := r.read(PackedWordBits)
			if c >= q {
				return nil, fmt.Errorf("ckks: unmarshal eval keys: residue %d ≥ q_%d", c, i)
			}
			poly.Coeffs[i][j] = c
		}
	}
	rl.NTT(poly)
	return poly, nil
}

// UnmarshalEvaluationKeySet reverses MarshalEvaluationKeySet, validating
// the embedded spec against p, the geometry against the parameter set's
// gadget, the blob length before any payload-proportional allocation, and
// every residue against the modulus chain.
func (p *Parameters) UnmarshalEvaluationKeySet(data []byte) (*EvaluationKeySet, error) {
	spec, info, err := ReadEvalKeyInfo(data)
	if err != nil {
		return nil, err
	}
	if spec != p.Spec() {
		return nil, fmt.Errorf("ckks: unmarshal eval keys: embedded spec %+v does not match parameters", spec)
	}
	switch info.Gadget {
	case GadgetHybrid:
		// ReadEvalKeyInfo already pinned Digits == spec.SpecialLimbs; the
		// spec equality above transfers that to p.
		if p.SpecialLimbs == 0 {
			return nil, fmt.Errorf("ckks: unmarshal eval keys: hybrid blob needs special primes, parameters carry none")
		}
	default:
		if info.Digits != p.digitsPerLimb() {
			return nil, fmt.Errorf("ckks: unmarshal eval keys: %d gadget digits, parameters use %d", info.Digits, p.digitsPerLimb())
		}
	}
	if !info.HasRelin {
		return nil, fmt.Errorf("ckks: unmarshal eval keys: set carries no relinearization key")
	}
	if len(data) != EvalKeyWireBytes(spec, info) {
		return nil, fmt.Errorf("ckks: unmarshal eval keys: blob length %d does not match header geometry", len(data))
	}

	r := newBitReader(data[evalHeaderLen(len(info.Steps)):])
	readKsk := func() (*SwitchingKey, error) {
		if info.Gadget == GadgetHybrid {
			rqp := p.RingQPAt(info.MaxLevel)
			dnum := p.DnumAt(info.MaxLevel)
			ksk := &SwitchingKey{Gadget: GadgetHybrid, Alpha: info.Digits, Level: info.MaxLevel}
			ksk.H0 = make([]*ring.Poly, dnum)
			ksk.H1 = make([]*ring.Poly, dnum)
			for j := 0; j < dnum; j++ {
				if ksk.H0[j], err = unmarshalEvalPoly(rqp, r); err != nil {
					return nil, err
				}
				if ksk.H1[j], err = unmarshalEvalPoly(rqp, r); err != nil {
					return nil, err
				}
			}
			return ksk, nil
		}
		rl := p.RingAt(info.MaxLevel)
		ksk := &SwitchingKey{Gadget: GadgetBV, Digits: info.Digits, Level: info.MaxLevel}
		ksk.K0 = make([][]*ring.Poly, info.MaxLevel)
		ksk.K1 = make([][]*ring.Poly, info.MaxLevel)
		for i := 0; i < info.MaxLevel; i++ {
			ksk.K0[i] = make([]*ring.Poly, info.Digits)
			ksk.K1[i] = make([]*ring.Poly, info.Digits)
			for t := 0; t < info.Digits; t++ {
				if ksk.K0[i][t], err = unmarshalEvalPoly(rl, r); err != nil {
					return nil, err
				}
				if ksk.K1[i][t], err = unmarshalEvalPoly(rl, r); err != nil {
					return nil, err
				}
			}
		}
		return ksk, nil
	}

	ks := &EvaluationKeySet{Rot: make(map[int]*RotationKey), MaxLevel: info.MaxLevel, Gadget: info.Gadget}
	rlk, err := readKsk()
	if err != nil {
		return nil, err
	}
	ks.Rlk = &RelinearizationKey{K: rlk}
	if info.HasConj {
		g := p.GaloisElementConjugate()
		k, err := readKsk()
		if err != nil {
			return nil, err
		}
		ks.Conj = &RotationKey{G: g, K: k, Perm: p.Ring().GaloisPermNTT(g)}
	}
	for _, s := range info.Steps {
		g := p.GaloisElement(s)
		k, err := readKsk()
		if err != nil {
			return nil, err
		}
		ks.Rot[s] = &RotationKey{G: g, K: k, Perm: p.Ring().GaloisPermNTT(g)}
	}
	return ks, nil
}
