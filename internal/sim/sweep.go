package sim

// Parameter sweeps for Fig. 5b (lane count) and Fig. 6b (memory modes ×
// polynomial degree).

// LanePoint is one x-position of Fig. 5b.
type LanePoint struct {
	Lanes        int
	EncTimeMS    float64
	ThroughputCt float64
	DRAMBound    bool
}

// LaneSweep evaluates encode+encrypt latency and throughput across PNL
// lane counts. The paper observes the LPDDR5 ceiling capping gains at 8
// lanes — the configuration ABC-FHE ships.
func LaneSweep(base Config, lanes []int) []LanePoint {
	out := make([]LanePoint, 0, len(lanes))
	for _, p := range lanes {
		c := base
		c.P = p
		r := c.EncodeEncrypt(1)
		out = append(out, LanePoint{
			Lanes:        p,
			EncTimeMS:    r.TimeMS,
			ThroughputCt: c.ThroughputCtPerSec(),
			DRAMBound:    r.DRAMCycles >= r.ComputeCycles,
		})
	}
	return out
}

// MemSweepPoint is one bar group of Fig. 6b.
type MemSweepPoint struct {
	LogN       int
	BaseMS     float64
	TFGenMS    float64
	AllMS      float64
	SpeedupAll float64 // Base / All — the paper's 8.2–9.3×
}

// MemorySweep evaluates the three memory configurations across polynomial
// degrees (Fig. 6b sweeps 2^13..2^16; limbs follow the paper's full-depth
// encryption at every degree).
func MemorySweep(base Config, logNs []int) []MemSweepPoint {
	out := make([]MemSweepPoint, 0, len(logNs))
	for _, logN := range logNs {
		c := base
		c.LogN = logN
		c.Mem = MemBase
		b := c.EncodeEncrypt(1)
		c.Mem = MemTFGen
		tf := c.EncodeEncrypt(1)
		c.Mem = MemAll
		all := c.EncodeEncrypt(1)
		out = append(out, MemSweepPoint{
			LogN:       logN,
			BaseMS:     b.TimeMS,
			TFGenMS:    tf.TimeMS,
			AllMS:      all.TimeMS,
			SpeedupAll: b.TimeMS / all.TimeMS,
		})
	}
	return out
}
