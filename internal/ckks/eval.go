package ckks

import (
	"math"

	"repro/internal/ring"
)

// Server-side evaluation primitives — not the paper's focus (ABC-FHE is a
// client accelerator), but the consumer of every ciphertext it produces:
// addition, plaintext multiplication, rescaling and level dropping live
// here; the key-gated operations (relinearized ct×ct multiplication,
// Galois rotations — keyswitch.go) complete the server half of the
// protocol, reachable publicly through the Server role's evaluation-key
// surface.

// Evaluator performs public (keyless) homomorphic operations.
type Evaluator struct {
	params *Parameters
}

// NewEvaluator builds an evaluator over params.
func NewEvaluator(params *Parameters) *Evaluator {
	return &Evaluator{params: params}
}

func (ev *Evaluator) ringAt(level int) *ring.Ring { return ev.params.RingAt(level) }

func sameLevelScale(a, b *Ciphertext) {
	if a.Level != b.Level {
		panic("ckks: ciphertext level mismatch")
	}
	// Relative to the larger scale so the check is order-symmetric.
	if math.Abs(a.Scale-b.Scale) > math.Max(a.Scale, b.Scale)*1e-12 {
		panic("ckks: ciphertext scale mismatch")
	}
}

// Add returns a + b (component-wise RLWE addition).
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	sameLevelScale(a, b)
	rl := ev.ringAt(a.Level)
	out := &Ciphertext{
		C0: rl.NewPoly(), C1: rl.NewPoly(),
		Level: a.Level, Scale: a.Scale,
	}
	rl.Add(a.C0, b.C0, out.C0)
	rl.Add(a.C1, b.C1, out.C1)
	return out
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	sameLevelScale(a, b)
	rl := ev.ringAt(a.Level)
	out := &Ciphertext{
		C0: rl.NewPoly(), C1: rl.NewPoly(),
		Level: a.Level, Scale: a.Scale,
	}
	rl.Sub(a.C0, b.C0, out.C0)
	rl.Sub(a.C1, b.C1, out.C1)
	return out
}

// AddPlain returns ct + pt (plaintext addition; scales must match).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckks: level mismatch")
	}
	if math.Abs(ct.Scale-pt.Scale) > math.Max(ct.Scale, pt.Scale)*1e-12 {
		panic("ckks: scale mismatch")
	}
	rl := ev.ringAt(ct.Level)
	out := ev.params.CopyCiphertext(ct)
	rl.Add(out.C0, pt.Value, out.C0)
	return out
}

// MulPlain returns ct ⊙ pt: both ciphertext halves multiplied by the
// plaintext polynomial. The result's scale is the product of scales;
// Rescale brings it back down. pt is transformed once internally.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckks: level mismatch")
	}
	rl := ev.ringAt(ct.Level)
	ptN := rl.GetPolyCopy(pt.Value)
	rl.NTT(ptN)

	c0 := rl.CopyPoly(ct.C0)
	c1 := rl.CopyPoly(ct.C1)
	rl.NTT(c0)
	rl.NTT(c1)
	rl.MulCoeffs(c0, ptN, c0)
	rl.MulCoeffs(c1, ptN, c1)
	rl.INTT(c0)
	rl.INTT(c1)
	rl.PutPoly(ptN)
	return &Ciphertext{C0: c0, C1: c1, Level: ct.Level, Scale: ct.Scale * pt.Scale}
}

// rescalePoly divides p (coefficient domain, `level` limbs) by the last
// prime q_l exactly in RNS: p'_i = (p_i - p_l)·q_l^{-1} mod q_i, dropping
// the last limb.
func (ev *Evaluator) rescalePoly(p *ring.Poly, level int) *ring.Poly {
	r := ev.params.Ring()
	last := level - 1
	ql := r.Basis.Moduli[last].Q
	out := ev.ringAt(last).NewPoly()
	r.Engine().Run(last, func(i int) {
		m := r.Basis.Moduli[i]
		qlInv := m.Inv(ql % m.Q)
		pi, pl, oi := p.Coeffs[i], p.Coeffs[last], out.Coeffs[i]
		for j := range pi {
			oi[j] = m.Mul(m.Sub(pi[j], pl[j]%m.Q), qlInv)
		}
	})
	return out
}

// Rescale divides the ciphertext by its last RNS prime, dropping one limb
// and dividing the scale accordingly — the level-consumption step after a
// multiplication.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level < 2 {
		panic("ckks: cannot rescale below level 1")
	}
	r := ev.params.Ring()
	ql := r.Basis.Moduli[ct.Level-1].Q
	return &Ciphertext{
		C0:    ev.rescalePoly(ct.C0, ct.Level),
		C1:    ev.rescalePoly(ct.C1, ct.Level),
		Level: ct.Level - 1,
		Scale: ct.Scale / float64(ql),
	}
}

// DropLevel truncates the ciphertext to `level` limbs without changing the
// scale (valid while |m·Δ| + noise stays below the remaining modulus).
// This is how the paper's evaluation models server→client traffic: the
// server returns 2-limb ciphertexts to minimize client work (§V-B).
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) *Ciphertext {
	if level < 1 || level > ct.Level {
		panic("ckks: invalid target level")
	}
	return &Ciphertext{
		C0:    &ring.Poly{Coeffs: ct.C0.Coeffs[:level], IsNTT: ct.C0.IsNTT},
		C1:    &ring.Poly{Coeffs: ct.C1.Coeffs[:level], IsNTT: ct.C1.IsNTT},
		Level: level,
		Scale: ct.Scale,
	}
}

// Negate returns -ct.
func (ev *Evaluator) Negate(ct *Ciphertext) *Ciphertext {
	rl := ev.ringAt(ct.Level)
	out := ev.params.CopyCiphertext(ct)
	rl.Neg(out.C0, out.C0)
	rl.Neg(out.C1, out.C1)
	return out
}

// MulConst multiplies by a real constant via an integer approximation
// round(c·2^k) with compensating scale bookkeeping (k chosen so the
// constant is represented to ~30 bits).
func (ev *Evaluator) MulConst(ct *Ciphertext, c float64) *Ciphertext {
	if c == 0 {
		rl := ev.ringAt(ct.Level)
		return &Ciphertext{C0: rl.NewPoly(), C1: rl.NewPoly(), Level: ct.Level, Scale: ct.Scale}
	}
	neg := c < 0
	if neg {
		c = -c
	}
	k := 30
	ci := uint64(math.Round(c * float64(uint64(1)<<uint(k))))
	rl := ev.ringAt(ct.Level)
	out := ev.params.CopyCiphertext(ct)
	rl.MulScalar(out.C0, ci, out.C0)
	rl.MulScalar(out.C1, ci, out.C1)
	if neg {
		rl.Neg(out.C0, out.C0)
		rl.Neg(out.C1, out.C1)
	}
	out.Scale = ct.Scale * float64(uint64(1)<<uint(k))
	return out
}
