package sim

import (
	"testing"
	"testing/quick"
)

// Monotonicity properties of the analytic model — the sanity constraints
// any latency model must satisfy regardless of calibration.

func TestMoreBandwidthNeverSlower(t *testing.T) {
	f := func(seed uint8) bool {
		c := PaperConfig()
		c.DRAMGBps = 20 + float64(seed%100)
		slow := c.EncodeEncrypt(1).Cycles
		c.DRAMGBps *= 2
		fast := c.EncodeEncrypt(1).Cycles
		return fast <= slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMoreLimbsNeverFaster(t *testing.T) {
	f := func(seed uint8) bool {
		c := PaperConfig()
		c.Limbs = 2 + int(seed%30)
		a := c.EncodeEncrypt(1).Cycles
		c.Limbs++
		b := c.EncodeEncrypt(1).Cycles
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMemoryModesOrdered(t *testing.T) {
	f := func(logNSeed, laneSeed uint8) bool {
		c := PaperConfig()
		c.LogN = 13 + int(logNSeed%4)
		c.P = 1 << (1 + laneSeed%5) // 2..32
		c.Mem = MemAll
		all := c.EncodeEncrypt(1).Cycles
		c.Mem = MemTFGen
		tf := c.EncodeEncrypt(1).Cycles
		c.Mem = MemBase
		base := c.EncodeEncrypt(1).Cycles
		return all <= tf && tf <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDRAMBytesConserved(t *testing.T) {
	// The report's MB fields must be consistent with its cycle count:
	// dramCycles = bytes / (bandwidth per cycle).
	c := PaperConfig()
	r := c.EncodeEncrypt(1)
	bytes := (r.DRAMReadMB + r.DRAMWriteMB) * 1e6
	wantCycles := bytes / c.dramBytesPerCycle()
	if diff := r.DRAMCycles - wantCycles; diff > 1 || diff < -1 {
		t.Fatalf("DRAM accounting inconsistent: %v vs %v", r.DRAMCycles, wantCycles)
	}
}

func TestFillSmallAgainstStream(t *testing.T) {
	// Pipeline fill must be a small fraction of the streamed operation at
	// paper scale — the premise of the streaming architecture.
	c := PaperConfig()
	r := c.EncodeEncrypt(1)
	if r.FillCycles > r.Cycles/10 {
		t.Fatalf("fill %v is not ≪ total %v", r.FillCycles, r.Cycles)
	}
}
